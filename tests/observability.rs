//! Observability integration: telemetry aggregation under the
//! work-stealing pool, Json-sink integrity at every pool size, and the
//! type-provenance graph's derivation chains across inference tiers.

use std::sync::{Mutex, MutexGuard, PoisonError};

use manta::provenance::{ExplainNode, ProvenanceGraph, TIER_REVEAL};
use manta::{Engine, MantaConfig};
use manta_analysis::ModuleAnalysis;
use manta_telemetry::{JsonSink, SpanReport, TelemetrySink};
use manta_workloads::{PhenomenonMix, ProjectSpec};

/// Serializes tests that flip process-global switches (pool size,
/// telemetry collection, provenance recording).
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the auto thread count even when an assertion panics.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        manta_parallel::set_threads(0);
    }
}

fn workload_analysis() -> ModuleAnalysis {
    let spec = ProjectSpec {
        name: "observability".to_string(),
        kloc: 1.0,
        functions: 6,
        mix: PhenomenonMix::balanced(),
        seed: 99,
    };
    ModuleAnalysis::build(spec.generate().module)
}

fn count_span(spans: &[SpanReport], name: &str) -> u64 {
    spans
        .iter()
        .map(|s| {
            let own = if s.name == name { s.count } else { 0 };
            own + count_span(&s.children, name)
        })
        .sum()
}

/// Spans and counters recorded from `par_map` workers aggregate to the
/// same deterministic totals at 1, 2 and 8 threads, and the Json sink
/// emits a parseable document every time — worker interleaving must
/// never corrupt the report.
#[test]
fn pool_telemetry_aggregates_deterministically_across_thread_counts() {
    let _l = lock();
    let _restore = ThreadGuard;
    let mut baseline: Option<(u64, u64)> = None;
    for threads in [1usize, 2, 8] {
        manta_parallel::set_threads(threads);
        manta_telemetry::set_enabled(true);
        manta_telemetry::reset();

        let items: Vec<u64> = (0..64).collect();
        let doubled = manta_parallel::par_map(items, |i| {
            manta_telemetry::span!("obs.item");
            manta_telemetry::counter("obs.items", 1);
            i * 2
        });
        assert_eq!(doubled, (0..64).map(|i| i * 2).collect::<Vec<u64>>());

        // A real pipeline on top, so workers also record nested spans.
        let analysis = workload_analysis();
        let _ = Engine::new(MantaConfig::full())
            .analyze(&analysis)
            .expect("non-strict cannot fail");

        let report = manta_telemetry::report();
        manta_telemetry::set_enabled(false);

        let obs_items = report.counters.get("obs.items").copied().unwrap_or(0);
        assert_eq!(obs_items, 64, "threads={threads}");
        assert_eq!(
            count_span(&report.spans, "obs.item"),
            64,
            "threads={threads}: worker spans must aggregate without loss"
        );

        // The Json sink must emit one well-formed document regardless of
        // how many workers contributed.
        let mut buf = Vec::new();
        JsonSink(&mut buf).emit(&report).expect("sink write");
        let text = String::from_utf8(buf).expect("utf-8");
        let v = manta_store::json::parse(&text).expect("valid JSON at any pool size");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("obs.items"))
                .and_then(manta_store::json::JsonValue::as_f64),
            Some(64.0),
            "threads={threads}"
        );

        // Deterministic pipeline counters must not depend on the pool.
        let unify = report.counters.get("unify.ops").copied().unwrap_or(0);
        assert!(unify > 0, "pipeline must record unify work");
        match baseline {
            None => baseline = Some((obs_items, unify)),
            Some((bi, bu)) => {
                assert_eq!(bi, obs_items, "threads={threads}");
                assert_eq!(
                    bu, unify,
                    "threads={threads}: unify.ops must be thread-count invariant"
                );
            }
        }
    }
}

/// Figure-3-style union juggling (FS site refinement) plus a
/// polymorphic helper called from an int and a pointer context (CS
/// refinement): the provenance graph must hold facts from every tier.
const EXPLAIN_ASM: &str = "\
module explainit
extern printf_d, 2, ret
extern printf_s, 2, ret
extern malloc, 1, ret
func poly(1) -> ret {
    salloc r7, 8
    st.w64 [r7+0], r1
    ld.w64 r0, [r7+0]
    ret
}
func driver(0) -> ret {
    movi r1, 7
    call poly, 1
    movi r1, 32
    ecall malloc, 1
    mov r1, r0
    call poly, 1
    ret
}
func branches(2) -> ret {
    salloc r7, 8
    brz r2, elsebr
    movi r3, 41
    st.w64 [r7+0], r3
    ld.w64 r4, [r7+0]
    mov r1, r4
    salloc r2, 8
    ecall printf_d, 2
    jmp done
elsebr:
    movi r1, 24
    ecall malloc, 1
    st.w64 [r7+0], r0
    ld.w64 r4, [r7+0]
    mov r2, r4
    salloc r1, 8
    ecall printf_s, 2
done:
    ret
}
";

fn explain_analysis() -> ModuleAnalysis {
    let image = manta_isa::assemble(EXPLAIN_ASM).expect("assembles");
    let module = manta_isa::lift::lift(&image).expect("lifts");
    ModuleAnalysis::build(module)
}

/// Collects the tier sets of every root→leaf path of an explain tree.
fn paths(graph: &ProvenanceGraph, node: &ExplainNode, acc: &mut Vec<Vec<String>>) {
    fn walk(
        graph: &ProvenanceGraph,
        node: &ExplainNode,
        prefix: &mut Vec<String>,
        acc: &mut Vec<Vec<String>>,
    ) {
        prefix.push(graph.facts()[node.fact as usize].tier.clone());
        if node.children.is_empty() {
            acc.push(prefix.clone());
        } else {
            for c in &node.children {
                walk(graph, c, prefix, acc);
            }
        }
        prefix.pop();
    }
    walk(graph, node, &mut Vec::new(), acc);
}

/// The golden provenance assertion: the recorded graph spans every
/// cascade tier, and at least one backward derivation chain crosses
/// three distinct tiers on its way down to a reveal leaf.
#[test]
fn derivation_chains_cross_the_cascade_tiers() {
    let _l = lock();
    let analysis = explain_analysis();
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .provenance(true)
        .build()
        .expect("cacheless engine cannot fail to build");
    let outcome = engine.analyze_explained(&analysis);
    manta_telemetry::set_provenance_enabled(false);
    let (result, graph) = outcome.expect("non-strict cannot fail");
    assert!(result.degradations.is_empty(), "{:?}", result.degradations);
    let graph = graph.expect("provenance-enabled engine returns a graph");

    let tiers = graph.tier_counts();
    for tier in [TIER_REVEAL, "FI", "+CS", "+FS"] {
        assert!(
            tiers.contains_key(tier),
            "tier `{tier}` missing from the graph: {tiers:?}"
        );
    }

    // Search every variable's explain tree for the deepest tier chain.
    let vars: std::collections::BTreeSet<_> = graph.facts().iter().map(|f| f.var).collect();
    let mut best: Vec<String> = Vec::new();
    let mut reveal_rooted = 0usize;
    for &v in &vars {
        let Some(root) = graph.explain(v) else {
            continue;
        };
        let mut all = Vec::new();
        paths(&graph, &root, &mut all);
        for p in all {
            if p.last().map(String::as_str) == Some(TIER_REVEAL) {
                reveal_rooted += 1;
                let distinct: std::collections::BTreeSet<&String> = p.iter().collect();
                if distinct.len() > best.iter().collect::<std::collections::BTreeSet<_>>().len() {
                    best = p.clone();
                }
            }
        }
    }
    assert!(reveal_rooted > 0, "chains must bottom out at reveal leaves");
    let distinct: std::collections::BTreeSet<&String> = best.iter().collect();
    assert!(
        distinct.len() >= 3,
        "some chain must cross three tiers (e.g. FS site fact -> CS/FI var \
         fact -> reveal), best was {best:?}"
    );
}

/// A two-version module for the summary-telemetry test: `v2` changes
/// one constant inside `branches` only, so `poly`'s context-sensitive
/// chunk (whose walk footprint spans `poly` and its caller `driver`,
/// never `branches`) must replay from the summary state.
fn summary_asm(constant: u32) -> String {
    EXPLAIN_ASM.replace("movi r3, 41", &format!("movi r3, {constant}"))
}

/// Summary-mode engines must surface their replay/recompute traffic
/// through the `summary.*` counters: a cold run records recomputes and
/// at least one wavefront; an edited re-run records replays (`hits`)
/// for untouched chunks alongside recomputes for the dirty ones.
#[test]
fn summary_counters_record_replays_and_recomputes() {
    let _l = lock();
    let dir = std::env::temp_dir().join(format!("manta-obs-summ-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = std::sync::Arc::new(manta::cache::AnalysisCache::open(&dir).expect("open cache"));
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .cache(cache)
        .summaries(true)
        .build()
        .expect("prebuilt cache cannot fail to attach");

    let build = |constant: u32| {
        let image = manta_isa::assemble(&summary_asm(constant)).expect("assembles");
        ModuleAnalysis::build(manta_isa::lift::lift(&image).expect("lifts"))
    };

    manta_telemetry::set_enabled(true);
    manta_telemetry::reset();
    let _ = engine.analyze(&build(41)).expect("non-strict cannot fail");
    let cold = manta_telemetry::report();
    let get = |r: &manta_telemetry::Report, n: &str| r.counters.get(n).copied().unwrap_or(0);
    assert!(
        get(&cold, "summary.recomputes") > 0,
        "cold run computes every chunk: {:?}",
        cold.counters
    );
    assert_eq!(get(&cold, "summary.hits"), 0, "no state to replay yet");
    assert!(get(&cold, "summary.wavefronts") > 0, "{:?}", cold.counters);

    manta_telemetry::reset();
    let _ = engine.analyze(&build(43)).expect("non-strict cannot fail");
    let warm = manta_telemetry::report();
    manta_telemetry::set_enabled(false);
    assert!(
        get(&warm, "summary.hits") > 0,
        "untouched chunks must replay after a one-function edit: {:?}",
        warm.counters
    );
    assert!(
        get(&warm, "summary.recomputes") > 0,
        "the edited function's chunks must recompute: {:?}",
        warm.counters
    );
    assert!(
        get(&warm, "summary.wavefront_width_max") > 0,
        "{:?}",
        warm.counters
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Provenance is explainable per *site* too: the union loads in
/// `branches` carry flow-sensitive site facts whose rendered trees name
/// the tier and interval.
#[test]
fn site_level_explanations_render() {
    let _l = lock();
    let analysis = explain_analysis();
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .provenance(true)
        .build()
        .expect("cacheless engine cannot fail to build");
    let outcome = engine.analyze_explained(&analysis);
    manta_telemetry::set_provenance_enabled(false);
    let (_, graph) = outcome.expect("non-strict cannot fail");
    let graph = graph.expect("graph");
    let module = analysis.module();
    let mut rendered = 0usize;
    for f in graph.facts() {
        if f.tier == "+FS" && f.site.is_some() {
            let tree = graph
                .render_explain(module, f.var, f.site)
                .expect("site fact must explain");
            assert!(tree.contains("+FS"), "{tree}");
            assert!(tree.contains('@'), "site facts render their site: {tree}");
            rendered += 1;
        }
    }
    assert!(rendered > 0, "the fixture must produce FS site facts");
}

/// The frontends report their decode/lift work through `lift.*`
/// counters: instruction counts from both lifters, plus the x86 lifter's
/// eflags materializations and recovered frame slots.
#[test]
fn lift_counters_record_frontend_work() {
    let _l = lock();
    let spec = ProjectSpec {
        name: "frontend_obs".to_string(),
        kloc: 1.0,
        functions: 6,
        mix: PhenomenonMix::balanced(),
        seed: 4242,
    };
    let module = spec.generate().module;
    let dual = manta_workloads::emit_dual(&module).expect("generated module lowers");

    let get = |r: &manta_telemetry::Report, n: &str| r.counters.get(n).copied().unwrap_or(0);

    manta_telemetry::set_enabled(true);
    manta_telemetry::reset();
    manta_isa::lift::lift(&dual.sb).expect("sb lift");
    let sb_report = manta_telemetry::report();

    manta_telemetry::reset();
    manta_x86::lift(&dual.x86).expect("x86 lift");
    let x86_report = manta_telemetry::report();
    manta_telemetry::set_enabled(false);

    assert!(
        get(&sb_report, "lift.insts_decoded") > 0,
        "{:?}",
        sb_report.counters
    );
    assert!(
        get(&x86_report, "lift.insts_decoded") > 0,
        "{:?}",
        x86_report.counters
    );
    // The generated programs branch (eflags at jcc) and hold stack
    // locals (rbp slots), so the x86-only counters must both trip.
    assert!(
        get(&x86_report, "lift.flags_materialized") > 0,
        "{:?}",
        x86_report.counters
    );
    assert!(
        get(&x86_report, "lift.frame_slots") > 0,
        "{:?}",
        x86_report.counters
    );
    // SB lifting never touches the x86-only counters.
    assert_eq!(get(&sb_report, "lift.flags_materialized"), 0);
    assert_eq!(get(&sb_report, "lift.frame_slots"), 0);
}
