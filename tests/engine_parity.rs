//! Bit-identity of the staged [`Engine`] pipeline against the legacy
//! `infer_*` entrypoint matrix it replaced.
//!
//! Every legacy path — plain, resilient, strict, cached, resilient
//! cached — must produce exactly the bytes the engine produces for the
//! same configuration: same variable/object/site maps, same stage
//! counts, same degradation records. Identity is checked through
//! [`manta::cache::results_identical`], i.e. over the full canonical
//! encoding (which includes degradations), across sensitivities, fuel
//! budgets, thread counts, and warm/cold caches.

#![allow(deprecated)]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

use manta::cache::results_identical;
use manta::{AnalysisCache, Engine, Manta, MantaConfig, Sensitivity};
use manta_analysis::ModuleAnalysis;
use manta_resilience::{Budget, BudgetSpec, MantaError};
use manta_workloads::{PhenomenonMix, ProjectSpec};

const SENSITIVITIES: [Sensitivity; 5] = [
    Sensitivity::Fi,
    Sensitivity::Fs,
    Sensitivity::FiFs,
    Sensitivity::FiCsFs,
    Sensitivity::FiFsCs,
];

/// Serializes tests that flip the process-global pool size.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the auto thread count even when an assertion panics.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        manta_parallel::set_threads(0);
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("manta-parity-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A small multi-project suite: phenomenon-diverse generated programs,
/// prepared through the checked loader the eval harness uses.
fn suite() -> Vec<ModuleAnalysis> {
    let specs: Vec<ProjectSpec> = ["nacre", "opal", "pyrite", "quartz"]
        .iter()
        .enumerate()
        .map(|(i, name)| ProjectSpec {
            name: (*name).to_string(),
            kloc: 1.0,
            functions: 5,
            mix: PhenomenonMix::balanced(),
            seed: 7000 + i as u64,
        })
        .collect();
    let load = manta_eval::load_specs_checked(specs, BudgetSpec::default());
    assert!(load.failures.is_empty(), "suite must build cleanly");
    load.projects.into_iter().map(|p| p.analysis).collect()
}

/// `Manta::infer` and the deprecated `infer_resilient` agree with the
/// engine for every sensitivity over the whole suite.
#[test]
fn plain_and_resilient_paths_match_the_engine() {
    for analysis in &suite() {
        for sens in SENSITIVITIES {
            let config = MantaConfig::with_sensitivity(sens);
            let manta = Manta::new(config);
            let engine = Engine::new(config);
            let via_engine = engine.analyze(analysis).expect("non-strict cannot fail");
            assert!(
                results_identical(&manta.infer(analysis), &via_engine),
                "{sens:?}: infer != Engine::analyze"
            );
            assert!(
                results_identical(
                    &manta.infer_resilient(analysis, &Budget::unlimited()),
                    &via_engine
                ),
                "{sens:?}: unlimited infer_resilient != Engine::analyze"
            );
        }
    }
}

/// Fuel exhaustion degrades to exactly the same tier with exactly the
/// same surviving maps through both entrypoints, at every fuel level.
#[test]
fn fuel_budgets_degrade_identically_through_both_paths() {
    let manta = Manta::new(MantaConfig::full());
    let engine = Engine::new(MantaConfig::full());
    for analysis in &suite() {
        for fuel in [0u64, 50, 500, 5_000, 50_000, u64::MAX] {
            let legacy = manta.infer_resilient(analysis, &Budget::with_fuel(fuel));
            let staged = engine
                .analyze_with_budget(analysis, &Budget::with_fuel(fuel))
                .expect("non-strict cannot fail");
            assert!(
                results_identical(&legacy, &staged),
                "fuel {fuel}: infer_resilient != Engine::analyze_with_budget"
            );
        }
    }
}

/// `infer_strict` and a strict engine agree on both sides of the
/// Ok/Err boundary: identical results with enough fuel, the same
/// structured error without.
#[test]
fn strict_path_matches_a_strict_engine_on_success_and_failure() {
    let analysis = &suite()[0];
    let manta = Manta::new(MantaConfig::full());
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .strict(true)
        .build()
        .expect("cacheless engine cannot fail to build");

    let legacy = manta
        .infer_strict(analysis, &Budget::unlimited())
        .expect("unlimited strict run succeeds");
    let staged = engine
        .analyze_with_budget(analysis, &Budget::unlimited())
        .expect("unlimited strict run succeeds");
    assert!(results_identical(&legacy, &staged));

    let legacy_err = manta
        .infer_strict(analysis, &Budget::with_fuel(0))
        .expect_err("zero fuel must error");
    let staged_err = engine
        .analyze_with_budget(analysis, &Budget::with_fuel(0))
        .expect_err("zero fuel must error");
    match (&legacy_err, &staged_err) {
        (MantaError::Budget { stage: a, kind: ka }, MantaError::Budget { stage: b, kind: kb }) => {
            assert_eq!(a, b, "exhaustion attributed to the same stage");
            assert_eq!(ka, kb);
        }
        other => panic!("expected two budget errors, got {other:?}"),
    }
}

/// Cold and warm cached runs through the deprecated wrappers match the
/// engine's cache path bit for bit, and both serve the second run from
/// the store.
#[test]
fn cached_paths_match_cold_and_warm() {
    let analysis = &suite()[1];
    let manta = Manta::new(MantaConfig::full());

    let legacy_dir = temp_dir("legacy");
    let staged_dir = temp_dir("staged");
    let legacy_cache = AnalysisCache::open(&legacy_dir).expect("open cache");
    let staged_cache = std::sync::Arc::new(AnalysisCache::open(&staged_dir).expect("open cache"));
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .cache(staged_cache.clone())
        .build()
        .expect("prebuilt cache cannot fail to attach");

    let cold_legacy = manta.infer_cached(analysis, &legacy_cache);
    let cold_staged = engine.analyze(analysis).expect("non-strict cannot fail");
    assert!(
        results_identical(&cold_legacy, &cold_staged),
        "cold: infer_cached != cached Engine::analyze"
    );

    let warm_legacy = manta.infer_cached(analysis, &legacy_cache);
    let warm_staged = engine.analyze(analysis).expect("non-strict cannot fail");
    assert!(results_identical(&warm_legacy, &warm_staged), "warm");
    assert!(
        results_identical(&cold_staged, &warm_staged),
        "warm == cold"
    );

    // The resilient cached wrapper with a fuel budget agrees too (fuel
    // is part of the key, so this computes a fresh entry).
    let spec = BudgetSpec {
        fuel: Some(10_000_000),
        deadline_ms: None,
    };
    let fueled_engine = Engine::builder()
        .config(MantaConfig::full())
        .budget(spec)
        .cache(staged_cache.clone())
        .build()
        .expect("prebuilt cache cannot fail to attach");
    let legacy_fueled = manta.infer_resilient_cached(analysis, &spec, &legacy_cache);
    let staged_fueled = fueled_engine
        .analyze(analysis)
        .expect("non-strict cannot fail");
    assert!(
        results_identical(&legacy_fueled, &staged_fueled),
        "fueled: infer_resilient_cached != cached Engine::analyze"
    );

    let _ = std::fs::remove_dir_all(&legacy_dir);
    let _ = std::fs::remove_dir_all(&staged_dir);
}

/// Engine results are invariant under the pool size, matching the
/// legacy single-path results computed at the default thread count.
#[test]
fn engine_results_are_thread_count_invariant() {
    let _l = lock();
    let _restore = ThreadGuard;
    let suite = suite();
    let engine = Engine::new(MantaConfig::full());
    let manta = Manta::new(MantaConfig::full());
    let baselines: Vec<_> = suite.iter().map(|a| manta.infer(a)).collect();
    for threads in [1usize, 2, 8] {
        manta_parallel::set_threads(threads);
        for (analysis, baseline) in suite.iter().zip(&baselines) {
            let r = engine.analyze(analysis).expect("non-strict cannot fail");
            assert!(
                results_identical(&r, baseline),
                "threads={threads}: engine result diverges from legacy baseline"
            );
        }
    }
}

/// `analyze_batch` is element-wise identical to sequential `analyze`,
/// and `analyze_module` equals substrate build + analyze.
#[test]
fn batch_and_module_entrypoints_match_their_composites() {
    let _l = lock();
    let _restore = ThreadGuard;
    let suite = suite();
    let engine = Engine::new(MantaConfig::full());
    for threads in [1usize, 8] {
        manta_parallel::set_threads(threads);
        let batch = engine.analyze_batch(&suite);
        assert_eq!(batch.len(), suite.len());
        for (analysis, batched) in suite.iter().zip(batch) {
            let single = engine.analyze(analysis).expect("non-strict cannot fail");
            let batched = batched.expect("non-strict cannot fail");
            assert!(
                results_identical(&single, &batched),
                "threads={threads}: batch result diverges from single analyze"
            );
        }
    }

    let module = suite[0].module().clone();
    let (analysis, result) = engine
        .analyze_module(module)
        .expect("non-strict cannot fail");
    let direct = engine.analyze(&analysis).expect("non-strict cannot fail");
    assert!(
        results_identical(&result, &direct),
        "analyze_module != build_substrate + analyze"
    );
}

/// Provenance recording must be a pure observer: results from a
/// provenance-enabled engine are bit-identical to the plain engine's,
/// cold and warm through the cache, and the persisted graph round-trips
/// byte-for-byte.
#[test]
fn provenance_recording_never_perturbs_results() {
    let _l = lock();
    for (i, analysis) in suite().iter().enumerate() {
        let base = Engine::new(MantaConfig::full())
            .analyze(analysis)
            .expect("non-strict cannot fail");
        let engine = Engine::builder()
            .config(MantaConfig::full())
            .provenance(true)
            .build()
            .expect("cacheless engine cannot fail to build");
        let outcome = engine.analyze_explained(analysis);
        manta_telemetry::set_provenance_enabled(false);
        let (observed, graph) = outcome.expect("non-strict cannot fail");
        assert!(
            results_identical(&base, &observed),
            "project {i}: provenance recording changed the result bytes"
        );
        let graph = graph.expect("provenance-enabled engine returns a graph");
        assert!(!graph.is_empty(), "project {i}: graph must record facts");
    }

    // Cached: the graph persists next to the result; a warm hit serves
    // byte-identical payloads for both.
    let dir = temp_dir("prov");
    let cache = std::sync::Arc::new(AnalysisCache::open(&dir).expect("open cache"));
    let engine = Engine::builder()
        .config(MantaConfig::full())
        .provenance(true)
        .cache(cache)
        .build()
        .expect("prebuilt cache cannot fail to attach");
    let analysis = &suite()[0];
    let cold = engine.analyze_explained(analysis);
    let warm = engine.analyze_explained(analysis);
    manta_telemetry::set_provenance_enabled(false);
    let (cold_res, cold_graph) = cold.expect("non-strict cannot fail");
    let (warm_res, warm_graph) = warm.expect("non-strict cannot fail");
    assert!(results_identical(&cold_res, &warm_res));
    assert_eq!(
        cold_graph.expect("cold graph").encode(),
        warm_graph.expect("warm graph").encode(),
        "warm graph must be byte-identical to the cold one"
    );
    let plain = Engine::new(MantaConfig::full())
        .analyze(analysis)
        .expect("non-strict cannot fail");
    assert!(
        results_identical(&plain, &cold_res),
        "cached provenance run must match the plain engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
