//! Qualitative shape assertions for the §6 experiments: who wins, in what
//! order, where the crossovers fall. Absolute numbers are workload-bound,
//! but these orderings are the paper's claims and must hold.
//!
//! Runs on a reduced suite to stay fast under the debug test profile.

use manta_analysis::ModuleAnalysis;
use manta_eval::experiments::{
    ablation_order, figure11, figure12, figure9, table3, table4, table5,
};
use manta_eval::runner::ProjectData;
use manta_workloads::{coreutils_suite, firmware_suite, generate_firmware, project_suite};

fn small_projects() -> Vec<ProjectData> {
    project_suite()
        .into_iter()
        .take(6)
        .map(|spec| {
            let g = spec.generate();
            ProjectData {
                name: spec.name,
                kloc: spec.kloc,
                analysis: ModuleAnalysis::build(g.module),
                truth: g.truth,
                build_ms: 0.0,
                stage_ms: Vec::new(),
            }
        })
        .collect()
}

fn small_coreutils() -> Vec<ProjectData> {
    coreutils_suite()
        .into_iter()
        .take(12)
        .map(|spec| {
            let g = spec.generate();
            ProjectData {
                name: spec.name,
                kloc: spec.kloc,
                analysis: ModuleAnalysis::build(g.module),
                truth: g.truth,
                build_ms: 0.0,
                stage_ms: Vec::new(),
            }
        })
        .collect()
}

fn small_firmware() -> Vec<ProjectData> {
    firmware_suite()
        .into_iter()
        .take(4)
        .map(|spec| {
            let g = generate_firmware(&spec);
            ProjectData {
                name: spec.name,
                kloc: 0.0,
                analysis: ModuleAnalysis::build(g.module),
                truth: g.truth,
                build_ms: 0.0,
                stage_ms: Vec::new(),
            }
        })
        .collect()
}

#[test]
fn table3_orderings_hold() {
    let projects = small_projects();
    let coreutils = small_coreutils();
    let t3 = table3::run(&projects, &coreutils);
    let p = |tool: &str| t3.total_of(tool).unwrap().precision();
    let r = |tool: &str| t3.total_of(tool).unwrap().recall();

    // The headline: the full cascade has the best precision of all tools.
    for tool in ["Dirty", "Ghidra", "RetDec", "Retypd", "FI", "FS", "FI+FS"] {
        assert!(
            p("FI+CS+FS") > p(tool),
            "full cascade must beat {tool}: {} vs {}",
            p("FI+CS+FS"),
            p(tool)
        );
    }
    // The staging order: each added stage increases precision.
    assert!(p("FI+CS+FS") > p("FI+FS"));
    assert!(p("FI+FS") > p("FI"));
    assert!(
        p("FI") > p("FS"),
        "standalone FS is the least precise ablation"
    );
    // Recall: all Manta ablations stay high; the hybrid pays only a small
    // recall cost relative to FI (the §6.4 discussion).
    assert!(r("FI") > 95.0 && r("FS") > 95.0 && r("FI+CS+FS") > 93.0);
    assert!(r("FI") >= r("FI+CS+FS"));
    // RetDec emits concrete types for everything: precision == recall.
    let retdec = t3.total_of("RetDec").unwrap();
    assert_eq!(retdec.correct, retdec.included);
    // Non-Manta tools have visibly lower recall than FI.
    for tool in ["Dirty", "Ghidra", "RetDec"] {
        assert!(r(tool) < r("FI"), "{tool} recall must trail FI");
    }
}

#[test]
fn table4_and_figure11_orderings_hold() {
    let projects = small_projects();
    let t4 = table4::run(&projects);
    let aict = |tool: &str| t4.geomean_aict(tool).unwrap();
    let prec = |tool: &str| t4.geomean_precision(tool).unwrap();
    let recall = |tool: &str| t4.geomean_recall(tool).unwrap();

    // Manta prunes more than the count/width baselines…
    assert!(prec("FI+CS+FS") > prec("TypeArmor"));
    assert!(prec("FI+CS+FS") > prec("tau-CFI"));
    assert!(aict("FI+CS+FS") < aict("TypeArmor"));
    // …without pruning feasible targets (recall stays ~perfect)…
    assert!(recall("FI+CS+FS") > 99.0);
    assert!(recall("TypeArmor") > 99.0);
    // …and never prunes below the source-level oracle.
    assert!(aict("FI+CS+FS") >= t4.geomean_source_aict() - 1e-9);
    // RetDec's wrong types cost indirect-call recall (Figure 11's outlier).
    let f11 = figure11::run(&t4);
    assert!(f11.recall_of("RetDec").unwrap() < 80.0);
}

#[test]
fn figure9_proportions_shift_as_designed() {
    let projects = small_projects();
    let f9 = figure9::run(&projects);
    let (p_fi, o_fi, _) = f9.proportions("FI").unwrap();
    let (p_fs, _, u_fs) = f9.proportions("FS").unwrap();
    let (p_full, o_full, _) = f9.proportions("FI+CS+FS").unwrap();
    // FI leaves a large over-approximated population; FS a large unknown
    // population; the full cascade resolves most of both.
    assert!(o_fi > 15.0, "FI over-approximates: {o_fi}");
    assert!(u_fs > 25.0, "FS leaves unknowns: {u_fs}");
    assert!(p_full > p_fi && p_full > p_fs);
    assert!(o_full < o_fi);
}

#[test]
fn refinement_order_ablation_holds() {
    // §6.4: the paper's CS-before-FS ordering must beat the reversed one
    // (flow-sensitive refinement first loses types CS could resolve).
    let projects = small_projects();
    let abl = ablation_order::run(&projects);
    let paper_order = abl.score_of("FI+CS+FS").unwrap();
    let reversed = abl.score_of("FI+FS+CS").unwrap();
    let no_cs = abl.score_of("FI+FS").unwrap();
    assert!(
        paper_order.precision() > reversed.precision(),
        "CS-first must beat FS-first: {} vs {}",
        paper_order.precision(),
        reversed.precision()
    );
    assert!(
        reversed.precision() >= no_cs.precision(),
        "a late CS pass never hurts"
    );
}

#[test]
fn table5_and_figure12_orderings_hold() {
    let firmware = small_firmware();
    let t5 = table5::run(&firmware);
    let manta = t5.fpr_of("Manta").unwrap();
    let notype = t5.fpr_of("Manta-NoType").unwrap();
    let cwe = t5.fpr_of("cwe_checker").unwrap();
    let satc = t5.fpr_of("SaTC").unwrap();
    // FPR ordering: Manta < Manta-NoType < cwe_checker < SaTC.
    assert!(manta < notype, "types must reduce FPR: {manta} vs {notype}");
    assert!(notype < cwe, "{notype} vs {cwe}");
    assert!(cwe < satc, "{cwe} vs {satc}");
    // Arbiter reports nothing anywhere it runs.
    assert_eq!(t5.reports_of("Arbiter"), 0);
    // NoType floods more reports than typed Manta.
    assert!(t5.reports_of("Manta-NoType") > t5.reports_of("Manta"));

    let f12 = figure12::run(&firmware);
    let full = f12.f1_of("FI+CS+FS").unwrap();
    for tool in ["Dirty", "Ghidra", "RetDec", "Retypd", "FI"] {
        assert!(
            full >= f12.f1_of(tool).unwrap(),
            "full cascade F1 must dominate {tool}"
        );
    }
}
