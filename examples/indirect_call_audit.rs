//! Resolve indirect-call targets with TypeArmor-, τ-CFI- and Manta-style
//! analyses on a generated workload and compare against the source-level
//! oracle — the Table 4 scenario on one project.
//!
//! ```sh
//! cargo run --example indirect_call_audit
//! ```

use manta::{Manta, MantaConfig, TypeQuery};
use manta_analysis::ModuleAnalysis;
use manta_clients::{
    indirect_call_sites, resolve_targets_manta, resolve_targets_taucfi, resolve_targets_typearmor,
};
use manta_workloads::{generator, PhenomenonMix};

fn main() {
    let g = generator::generate(&generator::GenSpec {
        name: "dispatcher_demo".into(),
        functions: 40,
        mix: PhenomenonMix::balanced(),
        seed: 99,
    });
    let analysis = ModuleAnalysis::build(g.module);
    let module = analysis.module();
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);

    let at = module.address_taken_functions().len();
    println!("{at} address-taken functions (candidate targets)\n");

    for site in indirect_call_sites(&analysis).iter().take(8) {
        let host = module.function(site.func).name();
        let ta = resolve_targets_typearmor(&analysis, site).len();
        let tc = resolve_targets_taucfi(&analysis, site).len();
        let manta = resolve_targets_manta(&analysis, &inference as &dyn TypeQuery, site);
        println!(
            "icall in {host} ({} args): TypeArmor keeps {ta}, tau-CFI {tc}, Manta {}",
            site.args.len(),
            manta.len()
        );
        let names: Vec<&str> = manta.iter().map(|&f| module.function(f).name()).collect();
        println!("    Manta targets: {names:?}");
    }
}
