//! The whole pipeline from *bytes*: assemble an SB-ISA program, encode it
//! to an SBF image, decode + lift it to SSA IR, and run the inference —
//! exactly what the paper does to a stripped firmware binary.
//!
//! ```sh
//! cargo run --example lift_and_infer
//! ```

use manta::{Manta, MantaConfig};
use manta_analysis::{ModuleAnalysis, VarRef};

const PROGRAM: &str = r#"
module device_ctl
extern malloc, 1, ret
extern strlen, 1, ret
extern printf_d, 2, ret

func scale(2) -> ret {
    ; r1 = buffer pointer, r2 = count (both just 64-bit registers here)
    ld.w64 r3, [r1+8]
    add r4, r3, r2
    mov r0, r4
    ret
}

func main(1) -> ret {
    movi r1, 64
    ecall malloc, 1
    mov r7, r0          ; r7 = heap buffer
    mov r1, r7
    ecall strlen, 1
    mov r6, r0          ; r6 = length (int)
    salloc r5, 8
    st.w64 [r5+0], r6
    mov r1, r7
    mov r2, r6
    call scale, 2
    mov r2, r0
    salloc r1, 8
    ecall printf_d, 2
    ret
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble to machine code and serialize to raw bytes — the "binary".
    let image = manta_isa::assemble(PROGRAM)?;
    let bytes = manta_isa::encode(&image);
    println!(
        "encoded SBF image: {} bytes, {} instructions",
        bytes.len(),
        image.total_insts()
    );

    // A consumer sees only the bytes.
    let decoded = manta_isa::decode(&bytes)?;
    println!(
        "--- disassembly ---\n{}",
        manta_isa::asm::disassemble(&decoded)
    );

    // Lift to SSA (registers -> values, no types survive).
    let module = manta_isa::lift::lift(&decoded)?;
    println!(
        "--- lifted IR ---\n{}",
        manta_ir::printer::print_module(&module)
    );

    // Infer types.
    let analysis = ModuleAnalysis::build(module);
    let result = Manta::new(MantaConfig::full()).infer(&analysis);
    for func in analysis.module().functions() {
        for (i, &p) in func.params().iter().enumerate() {
            let v = VarRef::new(func.id(), p);
            println!(
                "{}#arg{i}: F^ = {}, Fv = {}",
                func.name(),
                result.upper(v),
                result.lower(v)
            );
        }
    }
    Ok(())
}
