//! Audit a synthetic firmware image with the type-assisted bug detector
//! and compare against the untyped ablation — the Table 5 scenario on one
//! image.
//!
//! ```sh
//! cargo run --example firmware_audit
//! ```

use manta::{Manta, MantaConfig, TypeQuery};
use manta_analysis::ModuleAnalysis;
use manta_clients::{detect_bugs, BugKind, CheckerConfig};
use manta_workloads::{generate_firmware, FirmwareSpec};

fn main() {
    let spec = FirmwareSpec {
        name: "DemoRouter_AX1".into(),
        real_bugs_per_class: 2,
        decoys_per_class: 2,
        noise_functions: 12,
        seed: 2024,
    };
    let image = generate_firmware(&spec);
    let truth = image.truth.clone();
    let analysis = ModuleAnalysis::build(image.module);

    let inference = Manta::new(MantaConfig::full()).infer(&analysis);
    for (label, types) in [
        ("Manta (type-assisted)", Some(&inference as &dyn TypeQuery)),
        ("Manta-NoType", None),
    ] {
        let (reports, visits) =
            detect_bugs(&analysis, types, &BugKind::ALL, CheckerConfig::default());
        println!(
            "=== {label}: {} reports ({} slice visits) ===",
            reports.len(),
            visits
        );
        let mut seen = std::collections::BTreeSet::new();
        for r in &reports {
            let func = analysis.module().function(r.func).name().to_string();
            if !seen.insert((r.kind, func.clone())) {
                continue;
            }
            let verdict = if truth.bugs.iter().any(|b| b.real && b.func == func) {
                "TRUE BUG"
            } else {
                "false positive"
            };
            println!("  [{}] in {func}: {verdict}", r.kind.label());
        }
        println!();
    }
}
