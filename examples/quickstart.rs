//! Quickstart: build a tiny stripped module, run the full hybrid-sensitive
//! type inference, and print what Manta recovered.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use manta::{Engine, Sensitivity, VarClass};
use manta_analysis::VarRef;
use manta_ir::{ModuleBuilder, Width};
use manta_resilience::Budget;

fn main() {
    // A stripped module: `grab(n)` allocates, `banner(s)` prints, and a
    // polymorphic `fwd(x)` is used from both an int and a ptr context.
    let mut mb = ModuleBuilder::new("quickstart");
    let malloc = mb.extern_fn("malloc", &[], None);
    let printf_s = mb.extern_fn("printf_s", &[], None);
    let printf_d = mb.extern_fn("printf_d", &[], None);

    let (fwd, mut fb) = mb.function("fwd", &[Width::W64], Some(Width::W64));
    let x = fb.param(0);
    let slot = fb.alloca(8);
    fb.store(slot, x);
    let v = fb.load(slot, Width::W64);
    fb.ret(Some(v));
    mb.finish_function(fb);

    let (_, mut fb) = mb.function("use_ptr", &[], Some(Width::W64));
    let sz = fb.const_int(64, Width::W64);
    let buf = fb.call_extern(malloc, &[sz], Some(Width::W64)).unwrap();
    let r = fb.call(fwd, &[buf], Some(Width::W64)).unwrap();
    let fmt = fb.alloca(8);
    fb.call_extern(printf_s, &[fmt, r], Some(Width::W32));
    fb.ret(Some(r));
    mb.finish_function(fb);

    let (_, mut fb) = mb.function("use_int", &[Width::W64], Some(Width::W64));
    let n = fb.param(0);
    let n2 = fb.binop(manta_ir::BinOp::Mul, n, n, Width::W64);
    let r = fb.call(fwd, &[n2], Some(Width::W64)).unwrap();
    let fmt = fb.alloca(8);
    fb.call_extern(printf_d, &[fmt, r], Some(Width::W32));
    fb.ret(Some(r));
    mb.finish_function(fb);

    let module = mb.finish();
    println!(
        "--- stripped module ---\n{}",
        manta_ir::printer::print_module(&module)
    );

    // Substrate pipeline: preprocessing, points-to, DDG — the engine's
    // first stage, reusable across sensitivities.
    let analysis = Engine::builder()
        .sensitivity(Sensitivity::FiCsFs)
        .build()
        .expect("a cacheless engine cannot fail to build")
        .build_substrate(module, &Budget::unlimited())
        .expect("an unlimited substrate build cannot fail");

    // Compare flow-insensitive inference against the full hybrid cascade.
    for s in [Sensitivity::Fi, Sensitivity::FiCsFs] {
        let engine = Engine::builder()
            .sensitivity(s)
            .build()
            .expect("a cacheless engine cannot fail to build");
        let result = engine
            .analyze(&analysis)
            .expect("a non-strict engine cannot fail");
        println!("--- {} ---", s.label());
        for func in analysis.module().functions() {
            for (i, &p) in func.params().iter().enumerate() {
                let v = VarRef::new(func.id(), p);
                let class = result.class_of(v);
                let shown = match result.precise_type(v) {
                    Some(t) => t.to_string(),
                    None if class == VarClass::Over => {
                        format!("[{} .. {}]", result.lower(v), result.upper(v))
                    }
                    None => "unknown".into(),
                };
                println!("  {}#arg{i}: {:?} {shown}", func.name(), class);
            }
        }
        let c = result.final_counts();
        println!(
            "  counts: {} precise / {} over / {} unknown",
            c.precise, c.over, c.unknown
        );
    }
}
