//! Define a brand-new bug checker from a source/sink specification — the
//! paper's §5.3 extensibility claim: "users of MANTA can easily implement
//! a new bug checker by specifying the sources and sinks of the
//! vulnerabilities to detect".
//!
//! ```sh
//! cargo run --example custom_checker
//! ```

use manta::{Manta, MantaConfig, TypeQuery};
use manta_analysis::ModuleAnalysis;
use manta_clients::{CustomChecker, SinkSpec, SlicerConfig, SourceSpec};
use manta_ir::{ExternEffect, ModuleBuilder, Width};

fn main() {
    // A format-string checker, written in four lines: attacker-controlled
    // strings must not become printf's *format* argument.
    let fmt_checker = CustomChecker {
        name: "FMT-STRING".into(),
        sources: SourceSpec::Effect(ExternEffect::TaintSource),
        sinks: SinkSpec::ExternArg {
            name: "printf_s".into(),
            index: 0,
        },
        numeric_guard: true,
    };

    // A vulnerable service: logs an NVRAM value as the format string, and
    // a sanitized one that converts to an integer first.
    let mut mb = ModuleBuilder::new("logger");
    let nvram = mb.extern_fn("nvram_get", &[], None);
    let atol = mb.extern_fn("atol", &[], None);
    let printf_s = mb.extern_fn("printf_s", &[], None);
    let printf_d = mb.extern_fn("printf_d", &[], None);

    let (_, mut fb) = mb.function("log_banner", &[], Some(Width::W32));
    let key = fb.alloca(8);
    let banner = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
    let r = fb
        .call_extern(printf_s, &[banner, banner], Some(Width::W32))
        .unwrap();
    fb.ret(Some(r));
    mb.finish_function(fb);

    let (_, mut fb) = mb.function("log_level", &[], Some(Width::W32));
    let key = fb.alloca(8);
    let raw = fb.call_extern(nvram, &[key], Some(Width::W64)).unwrap();
    let level = fb.call_extern(atol, &[raw], Some(Width::W64)).unwrap();
    let shown = fb.copy(level);
    let fmt = fb.alloca(8);
    fb.call_extern(printf_d, &[fmt, shown], Some(Width::W32));
    let r = fb
        .call_extern(printf_s, &[shown, shown], Some(Width::W32))
        .unwrap();
    fb.ret(Some(r));
    mb.finish_function(fb);

    let analysis = ModuleAnalysis::build(mb.finish());
    let inference = Manta::new(MantaConfig::full()).infer(&analysis);

    for (label, types) in [
        ("type-assisted", Some(&inference as &dyn TypeQuery)),
        ("untyped", None),
    ] {
        let reports = fmt_checker.detect(&analysis, types, SlicerConfig::default());
        println!("{label}: {} report(s)", reports.len());
        for r in &reports {
            println!(
                "  [{}] in {}",
                r.checker,
                analysis.module().function(r.func).name()
            );
        }
    }
    println!(
        "\nThe untyped run also flags log_level — but its \"format\" is an\n\
         integer after atol, so the type-assisted run prunes it (only the\n\
         genuine log_banner finding remains)."
    );
}
